package scenario

import (
	"os"
	"path/filepath"
	"testing"

	"sldbt/internal/audit"
	"sldbt/internal/exp"
	"sldbt/internal/workloads"
)

// TestRegistryResolvable statically validates every manifest: the workload
// exists, every configuration is known, every counter invariant names a
// resolvable counter, and every checksum invariant has a checksum source.
func TestRegistryResolvable(t *testing.T) {
	seen := map[string]bool{}
	for _, m := range Registry() {
		if seen[m.Name] {
			t.Errorf("duplicate scenario name %q", m.Name)
		}
		seen[m.Name] = true
		w, ok := workloads.ByName(m.Workload)
		if !ok {
			t.Errorf("%s: unknown workload %q", m.Name, m.Workload)
			continue
		}
		if len(m.Configs) == 0 {
			t.Errorf("%s: no configurations", m.Name)
		}
		cells, err := m.Cells()
		if err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
		if len(cells) == 0 {
			t.Errorf("%s: no cells", m.Name)
		}
		for _, iv := range m.Invariants {
			switch iv.Kind {
			case KindChecksum:
				if _, ok := m.expected(w, 2); !ok {
					t.Errorf("%s: checksum invariant without a native twin or Checksum func", m.Name)
				}
			case KindOracle, KindBudget:
			case KindCounterMax, KindCounterMin, KindRateMin:
				if !KnownCounter(iv.Counter) {
					t.Errorf("%s: invariant names unknown counter %q", m.Name, iv.Counter)
				}
			default:
				t.Errorf("%s: unknown invariant kind %q", m.Name, iv.Kind)
			}
			for _, cfg := range iv.Configs {
				if _, ok := cfg.Knobs(); ok {
					continue
				}
				t.Errorf("%s: invariant restricted to unknown config %q", m.Name, cfg)
			}
		}
	}
	// The acceptance scenario must be in the registry with the full grid.
	if !seen["net-server"] {
		t.Error("registry is missing the net-server scenario")
	}
}

// TestRegistryCoversWorkloads: every workload in the suite is exercised by
// at least one scenario.
func TestRegistryCoversWorkloads(t *testing.T) {
	covered := map[string]bool{}
	for _, m := range Registry() {
		covered[m.Workload] = true
	}
	for _, w := range workloads.All() {
		if !covered[w.Name] {
			t.Errorf("no scenario covers workload %q", w.Name)
		}
	}
}

func TestCounterValue(t *testing.T) {
	run := &audit.EngineRun{ChainRate: 0.75, Flushes: 3}
	run.Counters.Retranslations = 9
	for _, tc := range []struct {
		name string
		want float64
	}{
		{"ChainRate", 0.75},
		{"Flushes", 3},
		{"Retranslations", 9},
		{"JCHits", 0},
	} {
		v, ok := CounterValue(run, tc.name)
		if !ok || v != tc.want {
			t.Errorf("CounterValue(%s) = %g, %v; want %g, true", tc.name, v, ok, tc.want)
		}
	}
	if _, ok := CounterValue(run, "NoSuchCounter"); ok {
		t.Error("unknown counter resolved")
	}
}

func TestParseChecksum(t *testing.T) {
	cs, err := ParseChecksum("sldbt: boot\ndeadbeef\n")
	if err != nil || cs != 0xdeadbeef {
		t.Errorf("got %08x, %v", cs, err)
	}
	if _, err := ParseChecksum("garbage"); err == nil {
		t.Error("garbage console parsed")
	}
}

// TestMatrixSubset runs a real reduced grid end to end: the audit records
// land on disk, the aggregated artifact flattens into diffable metrics, and
// every invariant passes.
func TestMatrixSubset(t *testing.T) {
	dir := t.TempDir()
	subset := []*Manifest{
		{
			Name: "hotloop", Workload: "hotloop",
			Configs: []exp.Config{exp.CfgChain, exp.CfgTrace},
			Invariants: []Invariant{
				{Kind: KindChecksum}, {Kind: KindOracle}, {Kind: KindBudget},
				{Kind: KindCounterMin, Counter: "TracesFormed", Bound: 1,
					Configs: []exp.Config{exp.CfgTrace}},
			},
		},
		{
			Name: "net-server", Workload: "net-server",
			Configs: []exp.Config{exp.CfgSMP},
			VCPUs:   []int{2},
			Invariants: []Invariant{
				{Kind: KindChecksum}, {Kind: KindOracle}, {Kind: KindBudget},
				{Kind: KindCounterMin, Counter: "Exclusives", Bound: 1},
			},
		},
	}
	m, err := RunMatrix(Options{Scenarios: subset, Scale: 1, AuditDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if m.Cells != 3 || len(m.Runs) != 3 {
		t.Fatalf("expected 3 cells, got %d (%d records)", m.Cells, len(m.Runs))
	}
	if m.Failures != 0 {
		t.Fatalf("matrix failures: %+v", m.Runs)
	}
	for _, name := range []string{
		"hotloop__chain__cpu1.json",
		"hotloop__trace__cpu1.json",
		"net-server__smp__cpu2.json",
	} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("missing audit record %s: %v", name, err)
		}
	}
	flat := m.Flatten()
	if flat["net-server/smp/cpu2 pass"] != 1 {
		t.Errorf("flattened pass metric missing or 0: %v", flat)
	}
	// The artifact round-trips through the file format benchdiff loads.
	path := filepath.Join(dir, "BENCH_matrix.json")
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := audit.LoadMatrix(path); err != nil {
		t.Fatal(err)
	}
}

// TestMatrixWarmstartCell: a Warmstart manifest runs its cell twice through a
// shared pcache file in Options.PCacheDir; the recorded (warm) run must serve
// every translation from the cache, and the cell's cache file must survive on
// disk for artifact upload.
func TestMatrixWarmstartCell(t *testing.T) {
	dir := t.TempDir()
	warm := []*Manifest{{
		Name: "hotloop-warm", Workload: "hotloop",
		Configs:   []exp.Config{exp.CfgChain},
		Warmstart: true,
		Invariants: []Invariant{
			{Kind: KindChecksum}, {Kind: KindOracle}, {Kind: KindBudget},
			{Kind: KindCounterMin, Counter: "WarmHits", Bound: 1},
			{Kind: KindCounterMax, Counter: "TBsTranslated", Bound: 0},
		},
	}}
	m, err := RunMatrix(Options{Scenarios: warm, Scale: 1, PCacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if m.Failures != 0 {
		t.Fatalf("warmstart cell failed: %+v", m.Runs)
	}
	r := &m.Runs[0]
	if r.Run.Counters.WarmHits == 0 || r.Run.Counters.TBsTranslated != 0 {
		t.Fatalf("recorded run is not the warm one: hits=%d translated=%d",
			r.Run.Counters.WarmHits, r.Run.Counters.TBsTranslated)
	}
	if _, err := os.Stat(filepath.Join(dir, "hotloop-warm__chain__cpu1.pcache")); err != nil {
		t.Errorf("per-cell pcache file missing: %v", err)
	}
	// The warm-start keys flatten into the diffable metric set (schema 3).
	if m.Flatten()["hotloop-warm/chain/cpu1 warm-hits"] == 0 {
		t.Errorf("warm-hits metric missing from flattened artifact: %v", m.Flatten())
	}
}

// TestMatrixRecordsViolation: an impossible invariant is recorded as a cell
// failure — loudly, but without aborting the rest of the grid.
func TestMatrixRecordsViolation(t *testing.T) {
	bad := []*Manifest{{
		Name: "hotloop-bad", Workload: "hotloop",
		Configs: []exp.Config{exp.CfgChain},
		Invariants: []Invariant{
			{Kind: KindCounterMin, Counter: "Retranslations", Bound: 1e9},
		},
	}}
	m, err := RunMatrix(Options{Scenarios: bad, Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.Failures != 1 || m.Runs[0].Pass {
		t.Fatalf("violation not recorded: %+v", m.Runs)
	}
	if m.Runs[0].Invariants[0].Detail == "" {
		t.Error("failed invariant carries no detail")
	}
}

// TestMatrixUnknownWorkload: harness-level mistakes are errors, not cell
// failures.
func TestMatrixUnknownWorkload(t *testing.T) {
	if _, err := RunMatrix(Options{Scenarios: []*Manifest{{
		Name: "x", Workload: "no-such-workload", Configs: []exp.Config{exp.CfgFull},
	}}}); err == nil {
		t.Error("unknown workload accepted")
	}
	if _, err := ByName([]string{"no-such-scenario"}); err == nil {
		t.Error("unknown scenario name accepted")
	}
}
