package arm

import "fmt"

// Mode is an ARM processor mode (CPSR bits 4:0).
type Mode uint8

// Implemented processor modes.
const (
	ModeUSR Mode = 0x10
	ModeIRQ Mode = 0x12
	ModeSVC Mode = 0x13
	ModeABT Mode = 0x17
	ModeUND Mode = 0x1B
	ModeSYS Mode = 0x1F
)

func (m Mode) String() string {
	switch m {
	case ModeUSR:
		return "usr"
	case ModeIRQ:
		return "irq"
	case ModeSVC:
		return "svc"
	case ModeABT:
		return "abt"
	case ModeUND:
		return "und"
	case ModeSYS:
		return "sys"
	}
	return fmt.Sprintf("mode(%#x)", uint8(m))
}

// Valid reports whether m is one of the implemented modes.
func (m Mode) Valid() bool {
	switch m {
	case ModeUSR, ModeIRQ, ModeSVC, ModeABT, ModeUND, ModeSYS:
		return true
	}
	return false
}

// Privileged reports whether the mode may execute system-level instructions
// and access privileged MMU mappings.
func (m Mode) Privileged() bool { return m != ModeUSR }

// Banked reports whether the mode has banked SP/LR/SPSR (all exception modes
// do; USR and SYS share the user bank and have no SPSR).
func (m Mode) Banked() bool {
	switch m {
	case ModeIRQ, ModeSVC, ModeABT, ModeUND:
		return true
	}
	return false
}

// BankIndex returns a dense index for the banked modes, for SPSR/SP/LR
// storage: SVC=0, IRQ=1, ABT=2, UND=3. Panics for unbanked modes.
func (m Mode) BankIndex() int {
	switch m {
	case ModeSVC:
		return 0
	case ModeIRQ:
		return 1
	case ModeABT:
		return 2
	case ModeUND:
		return 3
	}
	panic("arm: BankIndex of unbanked mode " + m.String())
}

// CPSR bit masks beyond NZCV.
const (
	CPSRMaskMode  = 0x1F
	CPSRBitI      = 1 << 7 // IRQ disable
	CPSRMaskFlags = 0xF0000000
)

// Exception vector offsets from the vector base (address 0).
type Vector uint32

// Exception vectors.
const (
	VecReset         Vector = 0x00
	VecUndef         Vector = 0x04
	VecSVC           Vector = 0x08
	VecPrefetchAbort Vector = 0x0C
	VecDataAbort     Vector = 0x10
	VecIRQ           Vector = 0x18
)

func (v Vector) String() string {
	switch v {
	case VecReset:
		return "reset"
	case VecUndef:
		return "undef"
	case VecSVC:
		return "svc"
	case VecPrefetchAbort:
		return "pabt"
	case VecDataAbort:
		return "dabt"
	case VecIRQ:
		return "irq"
	}
	return fmt.Sprintf("vector(%#x)", uint32(v))
}

// Mode returns the processor mode the exception is taken in.
func (v Vector) Mode() Mode {
	switch v {
	case VecUndef:
		return ModeUND
	case VecSVC:
		return ModeSVC
	case VecPrefetchAbort, VecDataAbort:
		return ModeABT
	case VecIRQ:
		return ModeIRQ
	}
	return ModeSVC
}

// LROffset returns the value added to the address of the *next* instruction
// to form the exception-mode LR, such that the conventional return sequence
// (SUBS pc, lr, #ret) resumes correctly. For SVC and undef LR is the next
// instruction (offset 0); for IRQ it is next+4; for data abort faulting+8,
// which given LR is computed from the faulting instruction address is +8.
func (v Vector) LROffset() uint32 {
	switch v {
	case VecIRQ:
		return 4
	case VecDataAbort:
		return 8 // relative to the faulting instruction address
	case VecPrefetchAbort:
		return 4 // relative to the faulting instruction address
	}
	return 0
}
