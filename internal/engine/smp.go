package engine

import (
	"sync/atomic"

	"sldbt/internal/arm"
	"sldbt/internal/ghw"
	"sldbt/internal/mmu"
	"sldbt/internal/obs"
	"sldbt/internal/x86"
)

// Deterministic multi-vCPU execution (SMP) over the shared code cache.
//
// The engine runs N guest vCPUs with one host machine, one bus and ONE
// physically-keyed TB cache — QEMU's classic single-threaded TCG model: a
// round-robin scheduler executes exactly one vCPU at a time, switching at
// translation-block boundaries once the running vCPU has retired a
// SliceQuantum of instructions. Because every engine and the SMP
// interpreter oracle (internal/smp) partition the instruction stream into
// the same blocks and count retirement identically, the interleaving is
// bit-deterministic and differentially comparable.
//
// What is shared and what is private:
//
//   - Shared: host machine + helpers, bus/devices, the TB cache with its
//     chain links and handle table, the page reverse map, the decode cache,
//     and the global exclusive monitor. A block translated by vCPU 0 is
//     executed directly by vCPU 1 — emitted code addresses all per-vCPU
//     state EBP-relative, and the scheduler repoints EBP at each switch.
//   - Private per vCPU: architectural state (arm.CPU + env), the softmmu
//     TLB, the jump cache, the return-address stack, and the scalar
//     dispatch state (resume PC, WFI halt, pending jump-cache fill).
//
// Cross-vCPU coherence rules (asserted by the smp tests):
//
//   - An SMC store or page invalidation by ANY vCPU retires the page's TBs
//     and purges every vCPU's jump-cache/RAS entries for them (purgeTB), and
//     unpatches the chain stubs that jump into them.
//   - A fresh code page write-protects every vCPU's TLB (flushAllTLBs in
//     insertTB), so no vCPU's cached writable entry can bypass SMC
//     detection.
//   - An active exclusive monitor keeps its page on the store slow path for
//     every vCPU (monitorPages), so any intervening store is observed and
//     clears the reservation.
//   - A translation-regime change (TTBR/SCTLR, TLB maintenance) is per-vCPU
//     for the TLB and jump cache, but conservatively unlinks all chains:
//     links bake virtual successor addresses, and the cache is shared.

// SliceQuantum is the round-robin time slice in retired guest instructions:
// a vCPU runs until the first block boundary at or past this many retired
// instructions, then yields. It is derived from the platform's idle-tick
// quantum so scheduling and idle time advance on one scale; the dispatcher,
// the chain/jump-cache glue and the SMP interpreter oracle all enforce the
// same bound, which keeps the interleaving identical across engines.
const SliceQuantum = 8 * ghw.IdleTickQuantum

// VCPU is one guest processor of the engine: its architectural state, its
// private env region, and its per-vCPU counters.
type VCPU struct {
	Index int
	CPU   *arm.CPU
	Env   *Env

	// Retired counts guest instructions retired by this vCPU.
	Retired uint64
	// StrexFailures counts exclusive stores by this vCPU refused by the
	// monitor.
	StrexFailures uint64

	nextPC        uint32
	halted        bool
	pendingJCFill bool   // the last exit was an indirect miss: fill on resolve
	sliceRet      uint64 // instructions retired in the current scheduler slice
	// hotEdge marks that this vCPU's last crossing satisfies the Dynamo
	// start-of-trace condition — a backward direct branch (loop edge) or an
	// exit from an existing trace — so the next region entry counts toward
	// the trace-formation threshold (see trace.go). Seeding heat only at
	// loop heads keeps trace seams off flag-live edges and stops competing
	// rotations of the same loop from forming.
	hotEdge bool

	// Per-vCPU dispatch/chain state that was engine-global when only one
	// vCPU could be in emitted code at a time: the TB being executed and the
	// guest VA it was entered at (advanced by chain glue), the chained
	// crossings since the last dispatcher entry, and the predecessor of a
	// pending chain link.
	curTB      *TB
	curPC      uint32
	chainSteps int
	lastTB     *TB
	lastSlot   int

	// stats is this vCPU's counter shard: execution-path counters increment
	// here uncontended and fold into Engine.Stats when a run returns (see
	// Engine.foldStats), so aggregate counters stay exact without atomics on
	// hot paths.
	stats Stats

	// mach is the vCPU's private machine shard while RunParallel is active
	// (nil otherwise): its own register file, flags and instruction-class
	// counts over the shared memory and helper table.
	mach *x86.Machine

	// qEpoch is the last reclamation epoch this vCPU acknowledged at a
	// safepoint; the parallel reclaimer frees a retired TB's resources only
	// once every running vCPU's qEpoch has passed the TB's retirement epoch
	// (see mttcg.go).
	qEpoch atomic.Uint64

	// lat is this vCPU's latency-histogram shard (translation-lock waits
	// increment here uncontended); foldStats drains it into Engine.lat like
	// the counter shard above.
	lat obs.Latency
	// sampleLeft is the guest-instruction countdown to the next hot-spot
	// profile sample (see Engine.obsSamplePC).
	sampleLeft uint64
}

// newVCPU builds vCPU i over its carved-out env region.
func newVCPU(m *x86.Machine, i int) *VCPU {
	cpu := arm.NewCPU()
	cpu.CP15.MPIDR = 0x80000000 | uint32(i)
	return &VCPU{Index: i, CPU: cpu, Env: NewEnvAt(m, CPUBase(i))}
}

// VCPUs returns the engine's vCPUs in index order.
func (e *Engine) VCPUs() []*VCPU { return e.vcpus }

// Cur returns the currently scheduled vCPU.
func (e *Engine) Cur() *VCPU { return e.cur }

// IPIs returns how many software interrupts have targeted the vCPU.
func (e *Engine) IPIs(i int) uint64 { return e.Bus.Intc.IPIs(i) }

// RegPinner is implemented by translators that keep guest registers pinned
// in host registers across translation blocks (the rule-based translator);
// the scheduler spills and refills those host registers at every vCPU
// switch, since the pinned values belong to the outgoing vCPU.
type RegPinner interface {
	// PinnedRegs returns the pinned guest registers and their host
	// registers, index-aligned.
	PinnedRegs() ([]arm.Reg, []x86.Reg)
}

// sliceExpired reports whether v has used up its scheduler slice.
// Uniprocessor engines never expire: the seed single-CPU dispatch behaviour
// (chain runs, break counts) is preserved exactly. Parallel runs have no
// scheduler and therefore no slices.
func (e *Engine) sliceExpired(v *VCPU) bool {
	return e.par == nil && len(e.vcpus) > 1 && v.sliceRet >= SliceQuantum
}

// regimeKeyOf identifies v's translation regime for chain-link validation:
// links made under one regime must not be crossed under another. Page-table
// *content* changes need no key bump — the guest must issue TLB maintenance
// for them, which unlinks every chain.
func (e *Engine) regimeKeyOf(v *VCPU) uint64 {
	cp := &v.CPU.CP15
	if !cp.MMUEnabled() {
		return 1 << 63 // identity mapping
	}
	return uint64(cp.TTBR0)
}

// schedule picks the vCPU to run next and makes it current: round-robin
// rotation when the running vCPU's slice is spent, skipping vCPUs halted in
// WFI (waking those whose IRQ input is asserted). Returns nil when every
// vCPU is halted with nothing pending — the caller advances platform time.
func (e *Engine) schedule() *VCPU {
	n := len(e.vcpus)
	start := e.cur.Index
	if n > 1 && e.cur.sliceRet >= SliceQuantum {
		e.cur.sliceRet = 0
		start = (start + 1) % n
	}
	for k := 0; k < n; k++ {
		v := e.vcpus[(start+k)%n]
		if v.halted {
			if !e.Bus.Intc.AssertedFor(v.Index) {
				continue
			}
			v.halted = false
		}
		e.switchTo(v)
		// The vCPU's pending word may be stale: time advanced while other
		// vCPUs ran, and wake-ups must deliver their IRQ at the next
		// block-head check.
		e.refreshIRQ(v)
		return v
	}
	return nil
}

// switchTo makes v the running vCPU: repoints the engine's current-state
// views and the emitted code's EBP base, and swaps the translator's pinned
// guest registers (host-register-resident state belongs to one vCPU at a
// time). A pending chain link is dropped — it recorded the previous vCPU's
// control flow.
func (e *Engine) switchTo(v *VCPU) {
	if v == e.cur {
		return
	}
	e.spillPinned()
	e.cur = v
	e.Env, e.CPU = v.Env, v.CPU
	e.M.Regs[x86.EBP] = v.Env.base
	e.fillPinned()
	// The incoming vCPU's pending chain link recorded control flow from its
	// previous slice; dropping it preserves the pre-SMP linking behaviour.
	v.lastTB = nil
	e.Stats.Switches++
}

// spillPinned copies the running vCPU's pinned guest registers from their
// host registers into its env, making env the complete architectural state.
func (e *Engine) spillPinned() {
	for i, r := range e.pinGuest {
		e.Env.SetReg(r, e.M.Regs[e.pinHost[i]])
	}
}

// fillPinned loads the (new) running vCPU's pinned guest registers from its
// env into their host registers.
func (e *Engine) fillPinned() {
	for i, r := range e.pinGuest {
		e.M.Regs[e.pinHost[i]] = e.Env.Reg(r)
	}
}

// FlushPinned spills the running vCPU's pinned registers to env, so env
// holds the complete architectural state (used by state snapshots and
// differential comparisons; a no-op for state-in-memory translators).
func (e *Engine) FlushPinned() { e.spillPinned() }

// syncPinnedReg copies one of v's guest registers from env into its pinned
// host register on the machine executing v (no-op when the register is
// memory-resident or the translator does not pin). Helpers that exit a block
// early — skipping the emitted env->host refill — use it to keep the pinned
// copy current.
func (e *Engine) syncPinnedReg(v *VCPU, r arm.Reg) {
	m := e.machOf(v)
	for i, g := range e.pinGuest {
		if g == r {
			m.Regs[e.pinHost[i]] = v.Env.Reg(r)
			return
		}
	}
}

// syncPrivTagOf refreshes one vCPU's env privilege-tag word (see jc.go).
func (e *Engine) syncPrivTagOf(v *VCPU) {
	v.Env.write(OffPrivTag, privTagBits(v.CPU.Mode().Privileged()))
}

// flushAllTLBs invalidates every vCPU's softmmu TLB — required when a page
// changes a machine-global property every vCPU's fills must respect (new
// code page, new exclusive-monitor page).
func (e *Engine) flushAllTLBs() {
	for _, v := range e.vcpus {
		v.Env.FlushTLB()
	}
}

// Snapshot returns the vCPU's user-visible register file plus CPSR, in the
// same layout as arm.CPU.Snapshot, for differential comparison against the
// SMP interpreter oracle. The caller must FlushPinned first if the
// translator pins registers and the vCPU is the running one.
func (v *VCPU) Snapshot() [17]uint32 {
	var s [17]uint32
	for r := arm.R0; r <= arm.PC; r++ {
		s[r] = v.Env.Reg(r)
	}
	s[16] = v.CPU.CPSR()&^uint32(arm.CPSRMaskFlags) | v.Env.Flags().Pack()
	return s
}

// --- exclusive-access helper (LDREX/STREX/CLREX) -------------------------

// CostExclusive is the synthetic helper cost of one exclusive-access
// instruction: a softmmu-bypassing walk plus the monitor transaction.
const CostExclusive = 30

// RegisterExclusive registers the helper emulating an exclusive-access
// instruction against the engine's global monitor. Both translators call it
// for KindLDREX/KindSTREX/KindCLREX: like all system-level instructions the
// exclusives are helper-emulated, because their monitor side effects (and
// the cross-vCPU SMC check on the store path) cannot live in emitted code.
func (e *Engine) RegisterExclusive(in arm.Inst, guestPC uint32, idx int) int {
	return e.registerDesc(HelperDesc{Kind: HelperExclusive, GuestPC: guestPC, Idx: idx, Inst: &in})
}

// exclusiveBody builds the exclusive-access helper a HelperExclusive
// descriptor stands for.
func (e *Engine) exclusiveBody(in arm.Inst, guestPC uint32, idx int) x86.Helper {
	return func(m *x86.Machine) int {
		v := e.ctx(m)
		v.stats.HelperCalls++
		v.stats.Exclusives++
		m.Charge(x86.ClassHelper, CostExclusive)
		env := v.Env
		cpu := v.CPU
		// Normalize the guest flag forms like every system helper (QEMU reads
		// the CPU state from memory), so the translator may statically use
		// either restore form after the call.
		env.SetFlags(env.Flags())
		switch in.Kind {
		case arm.KindCLREX:
			e.excl.Clear(v.Index)
			return -1
		case arm.KindLDREX:
			va := env.Reg(in.Rn)
			pa, _, fault := mmu.Walk(e.Bus, &cpu.CP15, va, mmu.Load, cpu.Mode() == arm.ModeUSR)
			if fault != nil {
				return e.dataAbort(v, fault, guestPC, idx)
			}
			e.excl.MarkLoad(v.Index, pa)
			e.noteMonitorPage(v, pa>>PageBits)
			env.SetReg(in.Rd, e.Bus.Read32(pa))
			return -1
		default: // KindSTREX
			va := env.Reg(in.Rn)
			pa, _, fault := mmu.Walk(e.Bus, &cpu.CP15, va, mmu.Store, cpu.Mode() == arm.ModeUSR)
			if fault != nil {
				return e.dataAbort(v, fault, guestPC, idx)
			}
			// Decision and store are one atomic monitor transaction
			// (StoreExcl): two vCPUs racing STREX on one granule cannot both
			// succeed around each other's reservation.
			if !e.excl.StoreExcl(v.Index, pa, func() { e.Bus.Write32(pa, env.Reg(in.Rm)) }) {
				v.StrexFailures++
				v.stats.StrexFailures++
				env.SetReg(in.Rd, 1)
				return -1
			}
			env.SetReg(in.Rd, 0)
			if e.codePages[pa>>PageBits] {
				// Exclusive store into translated code: same page-granular
				// invalidate-and-resume as the ordinary store helper. The
				// ExitSMC return unwinds past the block's emitted env->host
				// refill of Rd, so a pinned status register must be synced
				// here — the next block assumes pinned registers are current.
				e.syncPinnedReg(v, in.Rd)
				e.smcInvalidate(v, pa)
				e.retire(v, idx+1)
				v.nextPC = guestPC + 4
				return ExitSMC
			}
			return -1
		}
	}
}

// noteMonitorPage marks a page as a monitor target, flushing every vCPU's
// TLB on the first mark so cached writable entries cannot let an inline
// store bypass the monitor. The mark is sticky until Reset: a page that has
// ever been LDREX'd keeps its stores on the slow path, which costs a helper
// call per store to that page but avoids re-flushing every TLB each time a
// lock on the page is re-acquired (monitored pages are lock words — their
// stores are a tiny, contended minority). In a parallel run the poison set
// and the cross-vCPU TLB flush are shared-state mutations, so the first mark
// stops the world (re-checking under it — another vCPU may have marked the
// page while this one waited).
func (e *Engine) noteMonitorPage(v *VCPU, page uint32) {
	if e.monitorPages[page] {
		return
	}
	if e.par != nil {
		e.exclusiveBegin(v)
		defer e.exclusiveEnd()
		if e.monitorPages[page] {
			return
		}
	}
	e.monitorPages[page] = true
	e.flushAllTLBs()
}
