package core

import (
	"fmt"

	"sldbt/internal/arm"
	"sldbt/internal/engine"
	"sldbt/internal/rules"
	"sldbt/internal/tcg"
	"sldbt/internal/x86"
)

// emitInst dispatches one guest instruction (emission-order index i).
func (tc *tctx) emitInst(i int) {
	in := &tc.insts[i]
	switch {
	case in.Kind == arm.KindNOP:
		// nothing
	case in.Kind == arm.KindBranch:
		tc.emitBranch(i)
	case in.Kind == arm.KindBX:
		tc.emitBX(i)
	case in.Kind == arm.KindUndef:
		tc.emitUndef(i)
	case in.Kind == arm.KindLDREX || in.Kind == arm.KindSTREX || in.Kind == arm.KindCLREX:
		tc.emitExclusive(i)
	case in.IsSystem():
		tc.emitSystem(i)
	case in.Kind == arm.KindBlock:
		tc.emitFallback(i) // ldm/stm: rule set does not cover block transfers
	case in.IsMemAccess():
		if in.Cond == arm.AL {
			tc.emitMem(i)
		} else {
			tc.emitFallback(i) // conditional memory access
		}
	default:
		tc.emitALU(i)
	}
}

// --- data processing through rules -----------------------------------

func (tc *tctx) emitALU(i int) {
	in := &tc.insts[i]
	if in.Cond != arm.AL {
		tc.emitCondALU(i)
		return
	}
	fs := &tc.fs
	// Carry-consuming instructions without S clobber host EFLAGS while the
	// live guest flags must survive: save BEFORE selecting the rule variant,
	// because the packed save's normalizing CMC changes the carry polarity
	// the variant is chosen by.
	if readsCarryAsData(in) && !in.S && (fs.hostFull || fs.hostZN) && tc.liveOut[i] {
		tc.ensureSaved(savePacked, false)
	}
	carryOK := func(c rules.CarryIn) bool {
		switch c {
		case rules.CarryNone:
			return true
		case rules.CarryDirect:
			return !fs.hostFull || fs.pol == engine.PolDirectHost
		case rules.CarrySubInv:
			return fs.hostFull && fs.pol == engine.PolSubInvHost
		}
		return false
	}
	r := tc.t.Rules.Find(in, carryOK)
	if r == nil {
		tc.t.Rules.Misses++
		tc.emitFallback(i)
		return
	}
	tc.t.Stats.RuleHits++
	if r.Carry != rules.CarryNone && !fs.hostFull {
		// Carry-consuming rule with flags in env: restore first (a flag
		// use), then re-select the variant for the restored (direct) state.
		tc.restoreToHost()
		r = tc.t.Rules.Find(in, carryOK)
		if r == nil {
			panic("core: carry rule vanished after restore")
		}
	}
	// Pre-definition protection.
	switch {
	case in.S && r.Flags == rules.FlagsZN:
		if tc.liveOut[i] {
			tc.ensureCVParsed()
		}
	case !in.S && r.Flags != rules.FlagsKeep && !readsCarryAsData(in):
		// The template clobbers host EFLAGS without a guest definition.
		if (fs.hostFull || fs.hostZN) && tc.liveOut[i] {
			tc.ensureSaved(savePacked, false)
		}
	}
	r.Apply(tc.codeEm(), in)
	// Post state.
	if in.S {
		switch r.Flags {
		case rules.FlagsFull:
			fs.defFull(engine.PolDirectHost)
		case rules.FlagsFullSub:
			fs.defFull(engine.PolSubInvHost)
		case rules.FlagsZN:
			fs.defZN()
		default:
			panic(fmt.Sprintf("core: S-instruction matched flag-less rule %s", r.Name))
		}
	} else if r.Flags != rules.FlagsKeep {
		fs.clobberHost()
	}
}

// readsCarryAsData reports data-processing ops that consume the carry flag
// as an input (beyond condition evaluation).
func readsCarryAsData(in *arm.Inst) bool {
	if in.Kind != arm.KindDataProc {
		return false
	}
	switch in.Op {
	case arm.OpADC, arm.OpSBC, arm.OpRSC:
		return true
	}
	return in.Shift == arm.RRX
}

// emitCondALU handles conditionally-executed data processing. Flag-keeping
// rules run natively under a host conditional jump (both paths leave
// identical flag state); everything else takes the fallback path.
func (tc *tctx) emitCondALU(i int) {
	in := &tc.insts[i]
	if !in.S {
		carryNone := func(c rules.CarryIn) bool { return c == rules.CarryNone }
		if r := tc.t.Rules.Find(in, carryNone); r != nil && r.Flags == rules.FlagsKeep {
			tc.t.Stats.RuleHits++
			pol := tc.ensureCondUsable(in.Cond)
			skip := fmt.Sprintf("condskip_%d", tc.seq())
			tc.codeEm()
			tc.emitCondJump(in.Cond, pol, skip)
			r.Apply(tc.codeEm(), in)
			tc.em.Label(skip)
			return
		}
	}
	tc.emitFallback(i)
}

// ensureCVParsed guarantees the guest C/V values are current in the parsed
// env slots before a Z/N-only definition overwrites host EFLAGS.
func (tc *tctx) ensureCVParsed() {
	fs := &tc.fs
	if fs.envParsedCV {
		return
	}
	switch {
	case fs.hostFull:
		tc.t.Stats.SyncSaves++
		emitCVSave(tc.em, fs.pol)
		fs.envParsedCV = true
	case fs.envPacked:
		tc.restoreToHost()
		tc.t.Stats.SyncSaves++
		emitCVSave(tc.em, engine.PolDirectHost)
		fs.envParsedCV = true
	default:
		panic("core: C/V flags lost")
	}
}

// --- memory accesses ---------------------------------------------------

func (tc *tctx) emitMem(i int) {
	in := &tc.insts[i]
	// The softmmu probe clobbers host EFLAGS and a fault context-switches to
	// QEMU: coordinate first (§II-C "Address translation").
	tc.ensureSaved(savePacked, false)
	tc.emitAddrCalc(in, i) // VA in EAX; host flags are free now
	size, signed := memSize(in)
	preWB := in.PreIndex && in.Wback
	if preWB {
		// The effective address doubles as the writeback value; it must
		// survive the probe, and writeback happens only if no fault.
		tc.codeEm().Mov(x86.M(x86.EBP, engine.OffTmp2), x86.R(x86.EAX))
	}
	p := tc.e.MMUProbe()
	if tc.reuse != nil {
		p.Produce, p.Consume = tc.reuse.produce[i], tc.reuse.consume[i]
		if p.Produce {
			tc.t.Stats.ReuseProds++
		}
		if p.Consume {
			tc.t.Stats.ElidedChecks++
		}
	}
	if in.Load {
		var id int
		if p.Produce {
			id = tc.e.RegisterMMUReadProduce(tc.instPC(i), tc.origIdx[i], size, signed, tc.fixupFor(i))
		} else {
			id = tc.e.RegisterMMUReadFx(tc.instPC(i), tc.origIdx[i], size, signed, tc.fixupFor(i))
		}
		engine.EmitMMULoad(tc.em, size, signed, id, tc.seq(), p)
		tc.emitWriteback(in, preWB)
		if in.Rd == arm.PC {
			tc.codeEm()
			tc.em.Op2(x86.AND, x86.R(x86.EDX), x86.I(0xFFFFFFFC))
			tc.em.Mov(x86.M(x86.EBP, engine.OffExitPC), x86.R(x86.EDX))
			tc.fs.clobberHost()
			tc.em.SetClass(x86.ClassGlue)
			tc.e.EmitIndirectExit(tc.em, engine.IsReturn(in), tc.seq())
			tc.exited = true
			return
		}
		if in.Rn == in.Rd && (preWB || !in.PreIndex) {
			// Writeback already suppressed by emitWriteback for loads with
			// Rn == Rd; just store the loaded value.
		}
		tc.codeEm().Mov(rules.GuestOperand(in.Rd), x86.R(x86.EDX))
	} else {
		val := rules.GuestOperand(in.Rd)
		if in.Rd == arm.PC {
			val = x86.I(tc.instPC(i) + 8)
		}
		tc.codeEm().Mov(x86.R(x86.EDX), val)
		var id int
		if p.Produce {
			id = tc.e.RegisterMMUWriteProduce(tc.instPC(i), tc.origIdx[i], size, tc.fixupFor(i))
		} else {
			id = tc.e.RegisterMMUWriteFx(tc.instPC(i), tc.origIdx[i], size, tc.fixupFor(i))
		}
		engine.EmitMMUStore(tc.em, size, id, tc.seq(), p)
		tc.emitWriteback(in, preWB)
	}
	tc.fs.clobberHost()
	if tc.t.Level < OptElimination {
		tc.restoreToHost() // eager pairwise coordination (Figs. 5 and 10)
	}
}

// emitWriteback applies index writeback after a successful access.
func (tc *tctx) emitWriteback(in *arm.Inst, preWB bool) {
	if in.Load && in.Rn == in.Rd {
		return // base update suppressed when the load target is the base
	}
	em := tc.codeEm()
	rn := rules.GuestOperand(in.Rn)
	switch {
	case preWB:
		em.Mov(x86.R(x86.ECX), x86.M(x86.EBP, engine.OffTmp2))
		em.Mov(rn, x86.R(x86.ECX))
	case !in.PreIndex: // post-index always writes back
		em.Mov(x86.R(x86.EAX), rn)
		tc.emitOffsetAdjust(in)
		em.Mov(rn, x86.R(x86.EAX))
	}
}

// emitAddrCalc computes the access virtual address into EAX.
func (tc *tctx) emitAddrCalc(in *arm.Inst, i int) {
	em := tc.codeEm()
	if in.Rn == arm.PC {
		em.Mov(x86.R(x86.EAX), x86.I(tc.instPC(i)+8))
	} else {
		em.Mov(x86.R(x86.EAX), rules.GuestOperand(in.Rn))
	}
	if in.PreIndex {
		tc.emitOffsetAdjust(in)
	}
}

// emitOffsetAdjust applies the (possibly shifted-register) offset to EAX.
func (tc *tctx) emitOffsetAdjust(in *arm.Inst) {
	em := tc.em
	op := x86.ADD
	if !in.Up {
		op = x86.SUB
	}
	if in.ImmValid {
		if in.Imm != 0 {
			em.Op2(op, x86.R(x86.EAX), x86.I(in.Imm))
		}
		return
	}
	em.Mov(x86.R(x86.ECX), rules.GuestOperand(in.Rm))
	if in.ShiftAmt != 0 {
		hop := map[arm.ShiftType]x86.Op{
			arm.LSL: x86.SHL, arm.LSR: x86.SHR, arm.ASR: x86.SAR, arm.ROR: x86.ROR,
		}[in.Shift]
		em.Op2(hop, x86.R(x86.ECX), x86.I(uint32(in.ShiftAmt)))
	}
	em.Op2(op, x86.R(x86.EAX), x86.R(x86.ECX))
}

func memSize(in *arm.Inst) (uint8, bool) {
	switch {
	case in.Kind == arm.KindMem && in.ByteSz:
		return 1, false
	case in.Kind == arm.KindMem:
		return 4, false
	case in.SignedSz && in.HalfSz:
		return 2, true
	case in.SignedSz:
		return 1, true
	default:
		return 2, false
	}
}

// --- fallback: QEMU emulates the instruction (rule-set miss) ------------

func (tc *tctx) emitFallback(i int) {
	in := tc.insts[i]
	tc.t.Stats.Fallbacks++
	// The TCG-style code reads guest registers and flags from env and
	// writes results back there: full coordination around the site.
	tc.ensureSaved(saveParsed, true)
	tc.spillRegs(in.SrcRegs())
	skip := ""
	if in.Cond != arm.AL {
		skip = fmt.Sprintf("fbskip_%d", tc.seq())
		tc.codeEm()
		engine.EmitCondFromEnv(tc.em, in.Cond, skip, tc.seq())
	}
	tc.codeEm()
	ended := tcg.EmitFallback(tc.e, tc.em, &in, tc.instPC(i), tc.origIdx[i], tc.seq())
	tc.fillRegs(in.DstRegs())
	if skip != "" {
		tc.em.Label(skip)
	}
	// Host flags were clobbered (cond eval, probes, ALU); env parsed slots
	// are current (we saved, and S-fallbacks update them in place).
	tc.fs = flagState{envParsedFull: true, envParsedCV: true}
	if ended {
		tc.exited = true
		return
	}
	if tc.t.Level < OptElimination && in.Cond == arm.AL {
		tc.restoreToHost()
	}
}

// --- system-level instructions (helper emulation, Fig. 6) ----------------

func (tc *tctx) emitSystem(i int) {
	in := tc.insts[i]
	// Sync-save: the helper reads the guest CPU state from memory; packed
	// form defers the parse until the helper actually consumes flags.
	tc.ensureSaved(savePacked, true)
	tc.spillRegs(in.SrcRegs())
	skip := ""
	if in.Cond != arm.AL {
		skip = fmt.Sprintf("sysskip_%d", tc.seq())
		tc.codeEm()
		engine.EmitCondFromEnv(tc.em, in.Cond, skip, tc.seq())
	}
	id := tc.e.RegisterSystem(in, tc.instPC(i), tc.origIdx[i])
	tc.codeEm()
	tc.em.CallHelper(id)
	tc.fillRegs(in.DstRegs() &^ (1 << arm.PC))
	terminal := in.Kind == arm.KindSVC || in.Kind == arm.KindWFI || in.Kind == arm.KindSRSexc
	if terminal && skip == "" {
		// The helper never returns control here; backstop exit.
		tc.em.SetClass(x86.ClassGlue)
		tc.em.Exit(engine.ExitExc)
		tc.exited = true
		tc.fs = flagState{envParsedFull: true, envParsedCV: true}
		return
	}
	if skip != "" {
		tc.em.Label(skip)
	}
	// After any system helper the env forms are coherent (helpers normalize
	// through env.Flags/SetFlags).
	tc.fs = flagState{envParsedFull: true, envParsedCV: true, envPacked: true}
	if terminal {
		// Conditional SVC/WFI/eret: the fail path falls through to the next
		// TB (these end the block).
		fall := tc.instPC(i) + 4
		tc.tb.Next[0], tc.tb.HasNext[0] = fall, true
		tc.em.SetClass(x86.ClassGlue)
		tc.em.ExitChainable(engine.ExitNext0)
		tc.exited = true
		return
	}
	if tc.t.Level < OptElimination && in.Cond == arm.AL {
		tc.restoreToHost() // eager sync-restore (Fig. 6)
	}
}

// emitExclusive emits an exclusive-access instruction (LDREX/STREX/CLREX)
// through the engine's monitor helper, with the same coordination shape as
// any system helper: packed flag save (the helper may inject a data abort),
// pinned-register spill of the operands and refill of the result.
func (tc *tctx) emitExclusive(i int) {
	in := tc.insts[i]
	tc.ensureSaved(savePacked, true)
	tc.spillRegs(in.SrcRegs())
	skip := ""
	if in.Cond != arm.AL {
		skip = fmt.Sprintf("exskip_%d", tc.seq())
		tc.codeEm()
		engine.EmitCondFromEnv(tc.em, in.Cond, skip, tc.seq())
	}
	id := tc.e.RegisterExclusive(in, tc.instPC(i), tc.origIdx[i])
	tc.codeEm()
	tc.em.CallHelper(id)
	tc.fillRegs(in.DstRegs())
	if skip != "" {
		tc.em.Label(skip)
	}
	// The helper normalized the env forms (like every system helper).
	tc.fs = flagState{envParsedFull: true, envParsedCV: true, envPacked: true}
	if tc.t.Level < OptElimination && in.Cond == arm.AL {
		tc.restoreToHost()
	}
}

func (tc *tctx) emitUndef(i int) {
	tc.ensureSaved(saveParsed, true)
	id := tc.e.RegisterUndef(tc.instPC(i), tc.origIdx[i])
	tc.codeEm()
	tc.em.CallHelper(id)
	tc.em.SetClass(x86.ClassGlue)
	tc.em.Exit(engine.ExitExc)
	tc.exited = true
}

// --- control flow ---------------------------------------------------------

func (tc *tctx) emitBranch(i int) {
	in := &tc.insts[i]
	taken := uint32(int32(tc.instPC(i)) + 8 + in.Offset)
	fall := tc.instPC(i) + 4
	if in.Cond == arm.AL {
		if in.Link {
			tc.codeEm().Mov(x86.M(x86.EBP, engine.OffReg(arm.LR)), x86.I(fall))
			tc.tb.RetPush[1] = fall
		}
		tc.tb.Next[1], tc.tb.HasNext[1] = taken, true
		tc.endOfTBSave(taken, 0)
		tc.em.SetClass(x86.ClassGlue)
		tc.em.ExitChainable(engine.ExitNext1)
		tc.exited = true
		return
	}
	pol := tc.ensureCondUsable(in.Cond)
	tc.tb.Next[1], tc.tb.HasNext[1] = taken, true
	tc.tb.Next[0], tc.tb.HasNext[0] = fall, true
	// The save (if any) precedes the conditional jump; save sequences
	// preserve host EFLAGS.
	tc.endOfTBSave(taken, fall)
	fail := fmt.Sprintf("bfail_%d", tc.seq())
	tc.codeEm()
	tc.emitCondJump(in.Cond, pol, fail)
	if in.Link {
		tc.em.Mov(x86.M(x86.EBP, engine.OffReg(arm.LR)), x86.I(fall))
		tc.tb.RetPush[1] = fall
	}
	tc.em.SetClass(x86.ClassGlue)
	tc.em.ExitChainable(engine.ExitNext1)
	tc.em.Label(fail)
	tc.em.ExitChainable(engine.ExitNext0)
	tc.exited = true
}

func (tc *tctx) emitBX(i int) {
	in := &tc.insts[i]
	fall := tc.instPC(i) + 4
	var skipLbl string
	if in.Cond != arm.AL {
		pol := tc.ensureCondUsable(in.Cond)
		skipLbl = fmt.Sprintf("bxfail_%d", tc.seq())
		tc.endOfTBSave(0, fall)
		tc.codeEm()
		tc.emitCondJump(in.Cond, pol, skipLbl)
	} else {
		tc.endOfTBSave(0, 0)
	}
	em := tc.codeEm()
	em.Mov(x86.R(x86.EAX), rules.GuestOperand(in.Rm))
	em.Op2(x86.AND, x86.R(x86.EAX), x86.I(0xFFFFFFFE))
	em.Mov(x86.M(x86.EBP, engine.OffExitPC), x86.R(x86.EAX))
	// The AND clobbered host flags; with the ensureCondUsable above the
	// taken path used them already, and endOfTBSave preserved a copy.
	tc.fs.clobberHost()
	tc.em.SetClass(x86.ClassGlue)
	tc.e.EmitIndirectExit(tc.em, engine.IsReturn(in), tc.seq())
	if skipLbl != "" {
		tc.em.Label(skipLbl)
		tc.tb.Next[0], tc.tb.HasNext[0] = fall, true
		tc.em.ExitChainable(engine.ExitNext0)
	}
	tc.exited = true
}
