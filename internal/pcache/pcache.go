// Package pcache is the on-disk persistent translation cache: a versioned
// JSON container of engine.PersistRegion records, each individually
// CRC-protected so storage corruption degrades to a cold start for the
// affected regions instead of installing damaged code.
//
// The file is keyed by the engine configuration fingerprint
// (engine.ConfigFingerprint): emitted code bakes the translator, the
// chain/jump-cache/trace toggles and the TLB geometry into its probes, so a
// cache saved under one configuration is rejected wholesale under any other.
// Per-region content validation (source bytes against current guest RAM)
// happens at install time inside the engine, not here.
//
// SaveCache merges with an existing file of the same fingerprint —
// incremental append across runs — and writes atomically (temp file +
// rename), so a crash mid-save leaves the previous cache intact.
package pcache

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"

	"sldbt/internal/engine"
)

// Schema versions the container format. History:
//
//	1 — initial: fingerprint + CRC-per-region entries.
//
// LoadCache accepts schemas 1..Schema; readers added in later versions must
// keep loading every older one.
const Schema = 1

// File is the serialized container.
type File struct {
	Schema      int
	Fingerprint string
	Regions     []Entry
}

// Entry wraps one serialized region with its integrity checksum. Payload is
// a JSON-encoded engine.PersistRegion kept as raw bytes (base64 in the
// container) so the CRC covers exactly the bytes that round-trip through the
// file — a nested json.RawMessage would be re-indented by MarshalIndent and
// never match its checksum again.
type Entry struct {
	CRC     uint32 // IEEE CRC-32 of Payload
	Payload []byte // one engine.PersistRegion, JSON-encoded
}

// LoadCache reads a persistent cache file and returns the regions whose
// checksums verify. A file-level problem — unreadable, malformed JSON,
// unknown schema, fingerprint mismatch — is an error the caller should log
// before falling back to a cold start; it is never fatal to the engine.
// Individual entries that fail their CRC or do not unmarshal are skipped
// silently: the engine re-translates those regions cold.
func LoadCache(path, fingerprint string) ([]*engine.PersistRegion, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("pcache %s: malformed: %w", path, err)
	}
	if f.Schema < 1 || f.Schema > Schema {
		return nil, fmt.Errorf("pcache %s: schema %d outside supported range 1..%d", path, f.Schema, Schema)
	}
	if f.Fingerprint != fingerprint {
		return nil, fmt.Errorf("pcache %s: config fingerprint %q does not match engine %q",
			path, f.Fingerprint, fingerprint)
	}
	var out []*engine.PersistRegion
	for _, ent := range f.Regions {
		if crc32.ChecksumIEEE(ent.Payload) != ent.CRC {
			continue // corrupted entry: cold-translate this region
		}
		var pr engine.PersistRegion
		if err := json.Unmarshal(ent.Payload, &pr); err != nil {
			continue
		}
		out = append(out, &pr)
	}
	return out, nil
}

// SaveCache writes regions to path under the given fingerprint, merging with
// any existing same-fingerprint file (new regions win on key collisions, so
// repeated runs append incrementally) and replacing the file atomically.
func SaveCache(path, fingerprint string, regions []*engine.PersistRegion) error {
	merged := make(map[string]*engine.PersistRegion)
	key := func(pr *engine.PersistRegion) string {
		return fmt.Sprintf("%08x/%t/%08x/%08x", pr.PA, pr.Priv, pr.PC, pr.Hash)
	}
	// A previous file that fails to load (missing, corrupt, other config) is
	// simply not merged; this save still produces a valid cache.
	if old, err := LoadCache(path, fingerprint); err == nil {
		for _, pr := range old {
			merged[key(pr)] = pr
		}
	}
	for _, pr := range regions {
		if pr != nil {
			merged[key(pr)] = pr
		}
	}
	f := File{Schema: Schema, Fingerprint: fingerprint}
	keys := make([]string, 0, len(merged))
	for k := range merged {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		payload, err := json.Marshal(merged[k])
		if err != nil {
			return fmt.Errorf("pcache: marshal region: %w", err)
		}
		f.Regions = append(f.Regions, Entry{CRC: crc32.ChecksumIEEE(payload), Payload: payload})
	}
	data, err := json.MarshalIndent(&f, "", "\t")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".pcache-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}
