// Package arm models the ARM-v7 guest instruction set subset used by the
// emulators in this repository: the A32 data-processing, multiply, load/store,
// load/store-multiple, branch and system instruction classes that the mini
// guest OS and the benchmark workloads are written in.
//
// The package provides the instruction representation (Inst), binary
// encoding/decoding using genuine ARM A32 encodings, a two-pass text
// assembler, a disassembler, and the shared architectural semantics (shifter,
// ALU, condition evaluation, exception entry) that the reference interpreter,
// the TCG-like translator, the rule-based translator and the symbolic
// executor all delegate to, so that every engine agrees on guest semantics by
// construction.
package arm

import "fmt"

// Reg is an ARM core register number r0..r15.
type Reg uint8

// Core register aliases.
const (
	R0 Reg = iota
	R1
	R2
	R3
	R4
	R5
	R6
	R7
	R8
	R9
	R10
	R11
	R12
	SP // r13
	LR // r14
	PC // r15
)

func (r Reg) String() string {
	switch r {
	case SP:
		return "sp"
	case LR:
		return "lr"
	case PC:
		return "pc"
	default:
		return fmt.Sprintf("r%d", uint8(r))
	}
}

// Cond is an A32 condition code (bits 31:28 of every conditional encoding).
type Cond uint8

// Condition codes in encoding order.
const (
	EQ Cond = iota // Z set
	NE             // Z clear
	CS             // C set (aka HS)
	CC             // C clear (aka LO)
	MI             // N set
	PL             // N clear
	VS             // V set
	VC             // V clear
	HI             // C set and Z clear
	LS             // C clear or Z set
	GE             // N == V
	LT             // N != V
	GT             // Z clear and N == V
	LE             // Z set or N != V
	AL             // always
	NV             // never / unconditional space
)

var condNames = [16]string{
	"eq", "ne", "cs", "cc", "mi", "pl", "vs", "vc",
	"hi", "ls", "ge", "lt", "gt", "le", "al", "nv",
}

func (c Cond) String() string {
	if c < 16 {
		return condNames[c]
	}
	return fmt.Sprintf("cond(%d)", uint8(c))
}

// Suffix returns the assembler suffix for the condition: empty for AL.
func (c Cond) Suffix() string {
	if c == AL {
		return ""
	}
	return c.String()
}

// CondPass reports whether condition c passes for the given NZCV flags.
func CondPass(c Cond, n, z, cf, v bool) bool {
	switch c {
	case EQ:
		return z
	case NE:
		return !z
	case CS:
		return cf
	case CC:
		return !cf
	case MI:
		return n
	case PL:
		return !n
	case VS:
		return v
	case VC:
		return !v
	case HI:
		return cf && !z
	case LS:
		return !cf || z
	case GE:
		return n == v
	case LT:
		return n != v
	case GT:
		return !z && n == v
	case LE:
		return z || n != v
	case AL, NV:
		return true
	}
	return true
}

// UsesFlags reports whether evaluating the condition reads any NZCV flag.
func (c Cond) UsesFlags() bool { return c != AL && c != NV }

// AluOp is a data-processing opcode (bits 24:21 of the data-processing
// encoding, in encoding order).
type AluOp uint8

// Data-processing opcodes in encoding order.
const (
	OpAND AluOp = iota
	OpEOR
	OpSUB
	OpRSB
	OpADD
	OpADC
	OpSBC
	OpRSC
	OpTST
	OpTEQ
	OpCMP
	OpCMN
	OpORR
	OpMOV
	OpBIC
	OpMVN
)

var aluNames = [16]string{
	"and", "eor", "sub", "rsb", "add", "adc", "sbc", "rsc",
	"tst", "teq", "cmp", "cmn", "orr", "mov", "bic", "mvn",
}

func (op AluOp) String() string { return aluNames[op&15] }

// IsCompare reports whether the op only sets flags (TST/TEQ/CMP/CMN).
func (op AluOp) IsCompare() bool { return op >= OpTST && op <= OpCMN }

// HasRn reports whether the op reads a first operand register Rn.
func (op AluOp) HasRn() bool { return op != OpMOV && op != OpMVN }

// IsLogical reports whether the op is a logical (versus arithmetic) op, which
// determines whether C comes from the shifter and V is preserved.
func (op AluOp) IsLogical() bool {
	switch op {
	case OpAND, OpEOR, OpTST, OpTEQ, OpORR, OpMOV, OpBIC, OpMVN:
		return true
	}
	return false
}

// ShiftType is an operand-2 shift kind.
type ShiftType uint8

// Shift types in encoding order.
const (
	LSL ShiftType = iota
	LSR
	ASR
	ROR
	// RRX is encoded as ROR #0; the decoder rewrites it to RRX with amount 1.
	RRX
)

var shiftNames = [5]string{"lsl", "lsr", "asr", "ror", "rrx"}

func (s ShiftType) String() string { return shiftNames[s%5] }

// Kind classifies an instruction into one of the implemented classes.
type Kind uint8

// Instruction classes.
const (
	KindDataProc Kind = iota // ALU register/immediate forms
	KindMul                  // MUL/MLA
	KindMulLong              // UMULL/SMULL
	KindMem                  // LDR/STR word and byte
	KindMemH                 // LDRH/STRH/LDRSB/LDRSH
	KindBlock                // LDM/STM
	KindBranch               // B/BL
	KindBX                   // BX
	KindSVC                  // SVC (supervisor call)
	KindMRS                  // MRS
	KindMSR                  // MSR (register form)
	KindCPS                  // CPSIE/CPSID (interrupt mask change)
	KindCP15                 // MCR/MRC coprocessor 15
	KindVFPSys               // VMSR/VMRS (FP system register transfer)
	KindWFI                  // wait for interrupt
	KindNOP                  // architectural nop
	KindSRSexc               // exception-return data processing (e.g. SUBS pc, lr, #n)
	KindLDREX                // LDREX (exclusive load, word)
	KindSTREX                // STREX (exclusive store, word)
	KindCLREX                // CLREX (clear exclusive monitor)
	KindUndef                // undefined / unimplemented encoding
)

var kindNames = [...]string{
	"dataproc", "mul", "mullong", "mem", "memh", "block", "branch", "bx",
	"svc", "mrs", "msr", "cps", "cp15", "vfpsys", "wfi", "nop", "eret",
	"ldrex", "strex", "clrex", "undef",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Inst is a decoded ARM instruction. It is a flat union over all implemented
// instruction classes; Kind selects which fields are meaningful.
type Inst struct {
	Raw  uint32 // original encoding (0 when built by the assembler pre-encode)
	Cond Cond
	Kind Kind

	// Data processing / multiply.
	Op       AluOp
	S        bool // set flags
	Rd       Reg
	Rn       Reg
	Rm       Reg
	Rs       Reg // register shift amount / multiply operand
	RdHi     Reg // long multiply high destination
	Imm      uint32
	ImmValid bool // operand 2 (or offset) is an immediate
	Shift    ShiftType
	ShiftAmt uint8
	ShiftReg bool // shift amount is in Rs

	// Multiply.
	Acc      bool // MLA accumulate
	SignedML bool // SMULL vs UMULL

	// Memory.
	Load     bool
	ByteSz   bool // LDRB/STRB
	HalfSz   bool // LDRH/STRH
	SignedSz bool // LDRSB/LDRSH
	PreIndex bool
	Up       bool
	Wback    bool

	// Block transfer.
	RegList uint16

	// Branch.
	Link   bool
	Offset int32 // byte offset relative to the instruction address + 8

	// MRS/MSR.
	SPSR    bool
	MSRMask uint8 // field mask bits (c=1,x=2,s=4,f=8)

	// CPS.
	Enable bool // CPSIE (true) / CPSID (false)

	// Coprocessor 15.
	CRn, CRm   uint8
	Opc1, Opc2 uint8
	ToCoproc   bool // MCR (write to cp15) vs MRC (read)
}

// IsMemAccess reports whether the instruction accesses guest memory through
// the MMU (the class the paper's softmmu coordination applies to).
func (i *Inst) IsMemAccess() bool {
	return i.Kind == KindMem || i.Kind == KindMemH || i.Kind == KindBlock
}

// IsSystem reports whether the instruction is a system-level instruction in
// the paper's sense: it must be emulated by a helper function and cannot be
// covered by rules learned from user-level code. The exclusive-access
// primitives are included: they carry monitor side effects no learned
// user-level rule can express, so every engine emulates them in a helper.
func (i *Inst) IsSystem() bool {
	switch i.Kind {
	case KindSVC, KindMRS, KindMSR, KindCPS, KindCP15, KindVFPSys, KindWFI, KindSRSexc,
		KindLDREX, KindSTREX, KindCLREX:
		return true
	}
	return false
}

// IsBranch reports whether the instruction may change control flow, ending a
// translation block.
func (i *Inst) IsBranch() bool {
	switch i.Kind {
	case KindBranch, KindBX, KindSVC, KindSRSexc, KindWFI:
		return true
	}
	// Any instruction writing PC ends a block.
	switch i.Kind {
	case KindDataProc:
		return !i.Op.IsCompare() && i.Rd == PC
	case KindMem:
		return i.Load && i.Rd == PC
	case KindBlock:
		return i.Load && i.RegList&(1<<15) != 0
	}
	return false
}

// SetsFlags reports whether executing the instruction writes any NZCV flag.
func (i *Inst) SetsFlags() bool {
	switch i.Kind {
	case KindDataProc, KindMul, KindMulLong:
		return i.S
	case KindMSR:
		return !i.SPSR && i.MSRMask&8 != 0
	case KindVFPSys:
		// VMRS APSR_nzcv, fpscr writes flags; we only implement the Rt form.
		return false
	}
	return false
}

// ReadsFlags reports whether the instruction reads any NZCV flag (through its
// condition or through carry-in ops).
func (i *Inst) ReadsFlags() bool {
	if i.Cond.UsesFlags() {
		return true
	}
	if i.Kind == KindDataProc {
		switch i.Op {
		case OpADC, OpSBC, OpRSC:
			return true
		}
		if i.Shift == RRX {
			return true
		}
	}
	if i.Kind == KindMRS && !i.SPSR {
		return true
	}
	return false
}
