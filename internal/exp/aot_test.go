package exp

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sldbt/internal/seedtest"
)

// TestAOTWarmStart: the second run of a workload through a shared pcache file
// must translate (near) nothing and reach the identical final guest state —
// the tentpole acceptance property, on one cheap workload.
func TestAOTWarmStart(t *testing.T) {
	w := mustWorkload("mcf")
	path := filepath.Join(t.TempDir(), "mcf.pcache")
	cold, warm := quickRunner(), quickRunner()
	cold.PCache, warm.PCache = path, path
	cres, err := cold.Run(w, CfgChain)
	if err != nil {
		t.Fatal(err)
	}
	wres, err := warm.Run(w, CfgChain)
	if err != nil {
		t.Fatal(err)
	}
	if wres.Console != cres.Console || wres.Retired != cres.Retired {
		t.Fatalf("warm final state diverged: retired %d vs %d", wres.Retired, cres.Retired)
	}
	if wres.Engine.TBsTranslated != 0 || wres.Engine.WarmHits == 0 {
		t.Fatalf("warm run translated %d blocks with %d warm hits, want 0 translations",
			wres.Engine.TBsTranslated, wres.Engine.WarmHits)
	}
	if cres.Engine.PersistStores == 0 || wres.Engine.PersistLoads == 0 {
		t.Fatalf("persist counters silent: stores=%d loads=%d",
			cres.Engine.PersistStores, wres.Engine.PersistLoads)
	}
}

// TestAOTRendersTable smoke-tests the `aot` experiment plumbing at reduced
// budget (the full-budget run is the CI matrix's job).
func TestAOTRendersTable(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every AOT pair twice")
	}
	out, err := quickRunner().AOTStats()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"mcf", "net-server", "100.0%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("aot table missing %q:\n%s", want, out)
		}
	}
}

// TestFuzzPCacheCorruptionFallsBackCold bit-flips a saved cache and runs the
// engine against the damaged file: every run must fall back to translating
// whatever the loader rejected and still finish bit-identical to the clean
// cold run. Replayable with -seed (or SLDBT_FUZZ_SEED).
func TestFuzzPCacheCorruptionFallsBackCold(t *testing.T) {
	w := mustWorkload("mcf")
	dir := t.TempDir()
	clean := filepath.Join(dir, "mcf.pcache")
	cold := quickRunner()
	cold.PCache = clean
	cres, err := cold.Run(w, CfgChain)
	if err != nil {
		t.Fatal(err)
	}
	saved, err := os.ReadFile(clean)
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range seedtest.Seeds(t, 4) {
		r := rand.New(rand.NewSource(int64(seed)))
		data := append([]byte(nil), saved...)
		for n := 1 + r.Intn(16); n > 0; n-- {
			data[r.Intn(len(data))] ^= 1 << r.Intn(8)
		}
		path := filepath.Join(dir, fmt.Sprintf("corrupt-%d.pcache", seed))
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		warm := quickRunner()
		warm.PCache = path
		wres, err := warm.Run(w, CfgChain)
		if err != nil {
			t.Fatalf("seed %d: corrupted cache must degrade, not fail: %v", seed, err)
		}
		if wres.Console != cres.Console || wres.Retired != cres.Retired {
			t.Fatalf("seed %d: corrupted cache diverged from cold run (retired %d vs %d)",
				seed, wres.Retired, cres.Retired)
		}
		// Whatever survived the CRCs may warm-hit; everything else must have
		// been translated fresh — the two paths together cover the cold total.
		if got := wres.Engine.WarmHits + wres.Engine.TBsTranslated; got < cres.Engine.TBsTranslated {
			t.Fatalf("seed %d: warm run covered %d blocks, cold run needed %d",
				seed, got, cres.Engine.TBsTranslated)
		}
	}
}
