package engine

import (
	"testing"

	"sldbt/internal/seedtest"
	"sldbt/internal/x86"
)

// propertySeed returns the seed a randomized property test should use: the
// -seed flag / SLDBT_FUZZ_SEED override, or the test's default.
func propertySeed(t *testing.T, def int64) int64 { return seedtest.Seed(t, def) }

// traceStubTrans is a stub translator forming a three-block cycle
// A -> B -> C -> A (each block one guest instruction, Next[0] at the next
// stride, wrapping at cycle). It implements TraceTranslator by building the
// multi-block region directly from the plan — one translation helper per
// constituent block, real boundary helpers, and a (cold) side-exit helper —
// so the trace lifecycle and helper-accounting paths run without a guest.
type traceStubTrans struct {
	stride uint32
	cycle  uint32
}

func (traceStubTrans) Name() string { return "trace-stub" }

func (tr traceStubTrans) next(pc uint32) uint32 { return (pc + tr.stride) % tr.cycle }

func (tr traceStubTrans) Translate(e *Engine, pc uint32, priv bool) (*TB, error) {
	e.RegisterMMURead(pc, 0, 4, false)
	em := x86.NewEmitter()
	em.SetClass(x86.ClassGlue)
	em.ExitChainable(ExitNext0)
	tb := &TB{Block: em.Finish(pc, 1), PC: pc, GuestLen: 1}
	tb.Next[0], tb.HasNext[0] = tr.next(pc), true
	return tb, nil
}

func (tr traceStubTrans) TranslateTrace(e *Engine, plan *TracePlan, priv bool) (*TB, error) {
	em := x86.NewEmitter()
	region := &TB{PC: plan.PCs[0], GuestLen: 1}
	for k, pc := range plan.PCs {
		e.RegisterMMURead(pc, 0, 4, false) // a per-block translation helper
		if k > 0 {
			em.SetClass(x86.ClassIRQCheck)
			em.CallHelper(e.RegisterTraceBoundary(pc, 1, 0, priv))
		}
		region.Blocks = append(region.Blocks, TraceBlock{PC: pc, Len: 1})
		region.SrcPages = append(region.SrcPages, pc>>PageBits)
	}
	last := plan.PCs[len(plan.PCs)-1]
	region.Next[0], region.HasNext[0] = tr.next(last), true
	em.SetClass(x86.ClassGlue)
	em.ExitChainable(ExitNext0)
	// A cold side-exit stub: never executed here, but its helper closure is
	// owned by the region and must be released on every retirement path.
	em.Label("side")
	em.CallHelper(e.RegisterTraceSideExit(plan.PCs[0], 1, 0))
	region.Block = em.Finish(plan.PCs[0], len(plan.PCs))
	return region, nil
}

// newTraceStubEngine builds an engine over the stub cycle with chaining and
// tracing on, and steps it until a trace has formed.
func newTraceStubEngine(t *testing.T) *Engine {
	t.Helper()
	e, err := New(traceStubTrans{stride: 0x1000, cycle: 0x3000}, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	e.EnableChaining(true)
	e.EnableTracing(true)
	e.SetTraceThreshold(2)
	e.runLimit = 1 << 40
	for i := 0; i < 200 && e.Stats.TracesFormed == 0; i++ {
		if err := e.step(); err != nil {
			t.Fatal(err)
		}
	}
	if e.Stats.TracesFormed == 0 {
		t.Fatal("stub cycle never formed a trace")
	}
	return e
}

// checkRetireReasons asserts the per-reason trace-retirement split invariant:
// the four reason counters always sum to TraceRetired, whatever mix of paths
// ran.
func checkRetireReasons(t *testing.T, e *Engine) {
	t.Helper()
	s := &e.Stats
	sum := s.TraceRetiredInval + s.TraceRetiredEvict + s.TraceRetiredStale + s.TraceRetiredPoor
	if sum != s.TraceRetired {
		t.Errorf("retirement reasons don't sum: inval=%d evict=%d stale=%d poor=%d, total=%d",
			s.TraceRetiredInval, s.TraceRetiredEvict, s.TraceRetiredStale, s.TraceRetiredPoor,
			s.TraceRetired)
	}
}

// findTrace returns the (single) trace region in the cache.
func findTrace(t *testing.T, e *Engine) *Region {
	t.Helper()
	for _, tb := range e.cache {
		if tb.IsTrace() {
			return tb
		}
	}
	t.Fatal("no trace region in cache")
	return nil
}

// TestTraceFormationOnStubCycle: the A->B->C->A cycle gets hot at its
// backward edge, records [A B C], and installs a trace at A's key that
// spans all three pages; execution then runs inside it.
func TestTraceFormationOnStubCycle(t *testing.T) {
	e := newTraceStubEngine(t)
	trc := findTrace(t, e)
	if trc.NumBlocks() != 3 {
		t.Fatalf("trace spans %d blocks, want 3 (%v)", trc.NumBlocks(), trc.Blocks)
	}
	if len(trc.pages) != 3 {
		t.Fatalf("trace indexed under %d pages, want 3 (%v)", len(trc.pages), trc.pages)
	}
	checkCacheInvariants(t, e)
	before := e.Stats.TraceExec
	for i := 0; i < 10; i++ {
		if err := e.step(); err != nil {
			t.Fatal(err)
		}
	}
	if e.Stats.TraceExec == before {
		t.Error("execution never retired inside the formed trace")
	}
}

// TestTraceHelperLifetimeAcrossRetirementPaths: every retirement path a
// trace can take — page invalidation of any constituent page, eviction
// under the cache bound, staleness sweep after a regime event, whole-cache
// flush — must release the region's helper closures exactly (translation
// helpers, boundary helpers, side-exit helpers, chain glue), which
// checkCacheInvariants asserts against the machine's live-helper count.
// Each path must also attribute its retirement to the right per-reason
// counter, and the reason split must always sum to TraceRetired.
func TestTraceHelperLifetimeAcrossRetirementPaths(t *testing.T) {
	// Page invalidation of the *middle* constituent page.
	e := newTraceStubEngine(t)
	if n := e.InvalidatePage(1); n == 0 {
		t.Fatal("invalidating a constituent page retired nothing")
	}
	if e.Stats.TraceRetired != 1 {
		t.Fatalf("TraceRetired = %d, want 1", e.Stats.TraceRetired)
	}
	if e.Stats.TraceRetiredInval != 1 {
		t.Errorf("TraceRetiredInval = %d, want 1 (page-invalidation path)", e.Stats.TraceRetiredInval)
	}
	checkRetireReasons(t, e)
	checkCacheInvariants(t, e)

	// Staleness sweep: a regime/TLB event strands every trace; the next
	// dispatcher entry retires it.
	e = newTraceStubEngine(t)
	e.invalidateTraces()
	if err := e.step(); err != nil {
		t.Fatal(err)
	}
	if got := e.Stats.TraceRetired; got != 1 {
		t.Fatalf("stale sweep retired %d traces, want 1", got)
	}
	if e.Stats.TraceRetiredStale != 1 {
		t.Errorf("TraceRetiredStale = %d, want 1 (staleness-sweep path)", e.Stats.TraceRetiredStale)
	}
	checkRetireReasons(t, e)
	checkCacheInvariants(t, e)

	// Eviction under a capacity bound. Everything retired here went through
	// the FIFO evictor, so eviction must own the whole reason split.
	e = newTraceStubEngine(t)
	e.SetCacheCapacity(1)
	if e.Stats.Evictions == 0 {
		t.Fatal("capacity bound evicted nothing")
	}
	if e.Stats.TraceRetiredEvict != e.Stats.TraceRetired {
		t.Errorf("TraceRetiredEvict = %d, want %d (every retirement was an eviction)",
			e.Stats.TraceRetiredEvict, e.Stats.TraceRetired)
	}
	checkRetireReasons(t, e)
	checkCacheInvariants(t, e)

	// Whole-cache flush drops everything, helpers included; the flush counts
	// as invalidation.
	e = newTraceStubEngine(t)
	e.FlushCache()
	if got := e.M.Helpers(); got != 0 {
		t.Errorf("live helpers after flush = %d, want 0", got)
	}
	if e.Stats.TraceRetiredInval != e.Stats.TraceRetired {
		t.Errorf("TraceRetiredInval = %d, want %d (flush retires by invalidation)",
			e.Stats.TraceRetiredInval, e.Stats.TraceRetired)
	}
	checkRetireReasons(t, e)
	checkCacheInvariants(t, e)

	// Disabling tracing retires the formed traces (and their helpers).
	e = newTraceStubEngine(t)
	e.EnableTracing(false)
	if e.Stats.TraceRetired != 1 {
		t.Fatalf("EnableTracing(false) retired %d traces, want 1", e.Stats.TraceRetired)
	}
	if e.Stats.TraceRetiredStale != 1 {
		t.Errorf("TraceRetiredStale = %d, want 1 (tracing-off sweep)", e.Stats.TraceRetiredStale)
	}
	checkRetireReasons(t, e)
	checkCacheInvariants(t, e)
}

// TestTraceSelfChain: the loop-closing back edge chains the trace to
// itself, so iterations run without re-entering the dispatcher for a
// lookup; retiring the trace unpatches the self-link cleanly.
func TestTraceSelfChain(t *testing.T) {
	e := newTraceStubEngine(t)
	trc := findTrace(t, e)
	for i := 0; i < 5 && trc.ChainTo[0] == nil; i++ {
		if err := e.step(); err != nil {
			t.Fatal(err)
		}
	}
	if trc.ChainTo[0] != trc {
		t.Fatalf("trace back edge chained to %v, want itself", trc.ChainTo[0])
	}
	e.InvalidatePage(trc.pages[0])
	// The self-link (and any links into the trace) must be torn down;
	// checkCacheInvariants cross-checks linkCount against the installed
	// ChainTo slots and the helper accounting.
	checkCacheInvariants(t, e)
	if trc.ChainTo[0] != nil {
		t.Error("self-link survived retirement")
	}
}

// TestNewSMPRejectsBadCounts: engine.NewSMP returns an error (not a panic)
// for vCPU counts outside [1, MaxVCPUs]; valid counts still construct.
func TestNewSMPRejectsBadCounts(t *testing.T) {
	for _, n := range []int{-1, 0, MaxVCPUs + 1, 99} {
		if e, err := NewSMP(traceStubTrans{stride: 0x1000, cycle: 0x3000}, 1<<20, n); err == nil || e != nil {
			t.Errorf("NewSMP(n=%d) = (%v, %v), want nil engine and an error", n, e, err)
		}
	}
	for _, n := range []int{1, MaxVCPUs} {
		e, err := NewSMP(traceStubTrans{stride: 0x1000, cycle: 0x3000}, 1<<20, n)
		if err != nil || e == nil {
			t.Errorf("NewSMP(n=%d) failed: %v", n, err)
		}
	}
}
