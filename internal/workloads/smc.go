package workloads

import (
	"fmt"
	"strings"
)

// smcIters is the number of self-modification rounds the smc workload runs.
const smcIters = 200

// smcStations is the number of single-TB hot-path stations; each ends in a
// branch, so the hot path alone spans this many translation blocks that all
// survive a page-granular victim invalidation (and all die under the legacy
// whole-cache flush).
const smcStations = 16

// smc: a self-modifying-code stress workload. Every round patches the first
// instruction of a victim routine — isolated on its own 4 KiB page — to
// `mov r0, #(round & 0xff)`, calls it, then runs a hot path of many small
// blocks on untouched pages. Under page-granular invalidation only the
// victim page's block is retranslated each round; under a whole-cache flush
// the entire hot path is retranslated every round as well, which is the
// retranslation gap the `smc` experiment measures.
func smc() *Workload {
	var hot strings.Builder
	for i := 0; i < smcStations; i++ {
		fmt.Fprintf(&hot, "hot%d:\n", i)
		fmt.Fprintf(&hot, "\tadd r4, r4, #%d\n", i+1)
		fmt.Fprintf(&hot, "\teor r4, r4, r4, lsl #%d\n", i%5+1)
		fmt.Fprintf(&hot, "\tadd r4, r4, r5, lsl #%d\n", i%3)
		fmt.Fprintf(&hot, "\tb hot%d\n", i+1)
	}
	fmt.Fprintf(&hot, "hot%d:\n\tbx lr\n", smcStations)

	src := fmt.Sprintf(`
user_entry:
	mov r4, #0
	mov r5, #0
	ldr r8, =%d
smc_loop:
	; encode "mov r0, #(r5 & 0xff)" and store it over victim's first word —
	; an SMC store into the victim page
	and r0, r5, #0xff
	ldr r1, =0xE3A00000
	orr r0, r0, r1
	ldr r1, =victim
	str r0, [r1]
	bl victim
	add r4, r4, r0
	bl hot0
	add r5, r5, #1
	cmp r5, r8
	blt smc_loop
`, smcIters) + epilogue + hot.String() + `
	.pool
	.align 4096
victim:
	mov r0, #0
	bx lr
`
	native := func() uint32 {
		var r4 uint32
		for r5 := uint32(0); r5 < smcIters; r5++ {
			r4 += r5 & 0xff
			for i := 0; i < smcStations; i++ {
				r4 += uint32(i + 1)
				r4 ^= r4 << uint(i%5+1)
				r4 += r5 << uint(i%3)
			}
		}
		return r4
	}
	return &Workload{Name: "smc", Spec: false, GuestSrc: src, Native: native, Budget: 4_000_000}
}
