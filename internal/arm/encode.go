package arm

import "fmt"

// Encode produces the A32 binary encoding of the instruction. It is the
// inverse of Decode for every instruction the package implements; the
// round-trip property is tested exhaustively and with testing/quick.
func Encode(i Inst) (uint32, error) {
	c := uint32(i.Cond) << 28
	switch i.Kind {
	case KindDataProc, KindSRSexc:
		w := c | uint32(i.Op)<<21 | uint32(i.Rn)<<16 | uint32(i.Rd)<<12
		if i.S || i.Kind == KindSRSexc {
			w |= 1 << 20
		}
		if i.ImmValid {
			imm12, ok := EncodeImm(i.Imm)
			if !ok {
				return 0, fmt.Errorf("arm: immediate %#x not encodable", i.Imm)
			}
			return w | 1<<25 | imm12, nil
		}
		w |= uint32(i.Rm)
		typ, amt := i.Shift, uint32(i.ShiftAmt)
		if typ == RRX {
			typ, amt = ROR, 0
		} else if (typ == LSR || typ == ASR) && amt == 32 {
			amt = 0
		}
		if i.ShiftReg {
			return w | uint32(i.Rs)<<8 | uint32(typ)<<5 | 1<<4, nil
		}
		return w | amt<<7 | uint32(typ)<<5, nil

	case KindMul:
		w := c | uint32(i.Rd)<<16 | uint32(i.Rs)<<8 | 0x90 | uint32(i.Rm)
		if i.Acc {
			w |= 1<<21 | uint32(i.Rn)<<12
		}
		if i.S {
			w |= 1 << 20
		}
		return w, nil

	case KindMulLong:
		w := c | 1<<23 | uint32(i.RdHi)<<16 | uint32(i.Rd)<<12 | uint32(i.Rs)<<8 | 0x90 | uint32(i.Rm)
		if i.SignedML {
			w |= 1 << 22
		}
		if i.S {
			w |= 1 << 20
		}
		return w, nil

	case KindMem:
		w := c | 1<<26 | uint32(i.Rn)<<16 | uint32(i.Rd)<<12
		if i.Load {
			w |= 1 << 20
		}
		if i.Wback {
			w |= 1 << 21
		}
		if i.ByteSz {
			w |= 1 << 22
		}
		if i.Up {
			w |= 1 << 23
		}
		if i.PreIndex {
			w |= 1 << 24
		}
		if i.ImmValid {
			if i.Imm > 0xFFF {
				return 0, fmt.Errorf("arm: ldr/str offset %#x out of range", i.Imm)
			}
			return w | i.Imm, nil
		}
		return w | 1<<25 | uint32(i.ShiftAmt)<<7 | uint32(i.Shift)<<5 | uint32(i.Rm), nil

	case KindMemH:
		w := c | uint32(i.Rn)<<16 | uint32(i.Rd)<<12 | 0x90
		if i.Load {
			w |= 1 << 20
		}
		if i.Wback {
			w |= 1 << 21
		}
		if i.Up {
			w |= 1 << 23
		}
		if i.PreIndex {
			w |= 1 << 24
		}
		switch {
		case i.SignedSz && i.HalfSz:
			w |= 0x60
		case i.SignedSz:
			w |= 0x40
		case i.HalfSz:
			w |= 0x20
		default:
			return 0, fmt.Errorf("arm: invalid memh size")
		}
		if i.ImmValid {
			if i.Imm > 0xFF {
				return 0, fmt.Errorf("arm: halfword offset %#x out of range", i.Imm)
			}
			return w | 1<<22 | (i.Imm>>4)<<8 | i.Imm&0xF, nil
		}
		return w | uint32(i.Rm), nil

	case KindBlock:
		w := c | 1<<27 | uint32(i.Rn)<<16 | uint32(i.RegList)
		if i.Load {
			w |= 1 << 20
		}
		if i.Wback {
			w |= 1 << 21
		}
		if i.Up {
			w |= 1 << 23
		}
		if i.PreIndex {
			w |= 1 << 24
		}
		return w, nil

	case KindBranch:
		w := c | 5<<25
		if i.Link {
			w |= 1 << 24
		}
		off := i.Offset >> 2
		if off < -(1<<23) || off >= 1<<23 {
			return 0, fmt.Errorf("arm: branch offset %#x out of range", i.Offset)
		}
		return w | uint32(off)&0xFFFFFF, nil

	case KindBX:
		return c | 0x012FFF10 | uint32(i.Rm), nil

	case KindSVC:
		return c | 0xF<<24 | i.Imm&0xFFFFFF, nil

	case KindMRS:
		w := c | 0x010F0000 | uint32(i.Rd)<<12
		if i.SPSR {
			w |= 1 << 22
		}
		return w, nil

	case KindMSR:
		w := c | 0x0120F000 | uint32(i.MSRMask)<<16 | uint32(i.Rm)
		if i.SPSR {
			w |= 1 << 22
		}
		return w, nil

	case KindCPS:
		if i.Enable {
			return 0xF1080080, nil
		}
		return 0xF10C0080, nil

	case KindCP15:
		w := c | 0xE<<24 | uint32(i.Opc1)<<21 | uint32(i.CRn)<<16 | uint32(i.Rd)<<12 |
			0xF<<8 | uint32(i.Opc2)<<5 | 1<<4 | uint32(i.CRm)
		if !i.ToCoproc {
			w |= 1 << 20
		}
		return w, nil

	case KindVFPSys:
		if i.ToCoproc { // VMSR fpscr, Rt
			return c | 0x0EE10A10 | uint32(i.Rd)<<12, nil
		}
		return c | 0x0EF10A10 | uint32(i.Rd)<<12, nil

	case KindLDREX:
		return c | 0x01900F9F | uint32(i.Rn)<<16 | uint32(i.Rd)<<12, nil

	case KindSTREX:
		return c | 0x01800F90 | uint32(i.Rn)<<16 | uint32(i.Rd)<<12 | uint32(i.Rm), nil

	case KindCLREX:
		return 0xF57FF01F, nil

	case KindWFI:
		return c | 0x0320F003, nil

	case KindNOP:
		return c | 0x0320F000, nil
	}
	return 0, fmt.Errorf("arm: cannot encode kind %v", i.Kind)
}

// MustEncode encodes the instruction and panics on error; for use by the
// kernel/workload builders where encodings are statically known-good.
func MustEncode(i Inst) uint32 {
	w, err := Encode(i)
	if err != nil {
		panic(err)
	}
	return w
}
