// Package ghw implements the guest hardware platform shared by every
// execution engine: physical RAM, the system bus, and the device set (UART
// console, countdown timer, interrupt controller, DMA block device and a
// simple packet device). All device timing is expressed in retired guest
// instructions, which makes every engine bit-deterministic and mutually
// comparable.
package ghw

import (
	"fmt"
	"sync"
	"sync/atomic"
	"unsafe"
)

// Physical memory map.
const (
	RAMBase   = 0x00000000
	UARTBase  = 0xF0000000
	TimerBase = 0xF0001000
	IntcBase  = 0xF0002000
	BlockBase = 0xF0003000
	NetBase   = 0xF0004000
	DevSize   = 0x1000
)

// IRQ line assignments on the interrupt controller.
const (
	IRQTimer = 0
	IRQBlock = 1
	IRQNet   = 2
)

// IdleTickQuantum is how many retired-instruction-equivalents of platform
// time advance per poll while every CPU is halted in WFI waiting for an
// interrupt. It is the one clock the execution layers share when no guest
// instruction is retiring: the engine dispatcher's and the interpreter's
// halt loops tick by it, and the SMP scheduler both idles by it and derives
// its round-robin time slice from it (engine.SliceQuantum), so idle time and
// slice accounting stay commensurable across every engine.
const IdleTickQuantum = 16

// Device is a memory-mapped peripheral occupying one DevSize-aligned window.
type Device interface {
	Name() string
	Read32(off uint32) uint32
	Write32(off uint32, v uint32)
	// Tick advances the device by n retired guest instructions.
	Tick(n uint64)
}

// BusError describes an access to an unmapped physical address.
type BusError struct {
	Addr  uint32
	Write bool
}

func (e *BusError) Error() string {
	rw := "read"
	if e.Write {
		rw = "write"
	}
	return fmt.Sprintf("bus: %s of unmapped physical address %#08x", rw, e.Addr)
}

// Bus is the guest system bus: RAM plus memory-mapped devices. The zero
// value is unusable; use NewBus.
type Bus struct {
	RAM  []byte
	Intc *Intc

	devs    map[uint32]Device // keyed by window base
	tickers []Device

	// Now is the platform clock in retired guest instructions.
	Now uint64

	// Fault records the most recent bus error for engines that report
	// unmapped accesses as external aborts rather than Go errors.
	Fault *BusError

	// mu serializes device access and platform-time ticks while the bus is
	// shared by concurrently executing vCPUs (SetConcurrent). RAM accesses are
	// not serialized — they switch to atomic word operations instead, so
	// guest memory traffic never contends on the device lock and device-side
	// DMA (which re-enters the RAM path under mu) cannot deadlock.
	mu         sync.Mutex
	concurrent bool
}

// NewBus creates a bus with ramSize bytes of RAM and the standard device set
// (UART, timer, interrupt controller, block device, net device).
func NewBus(ramSize uint32) *Bus {
	return NewBusWithRAM(make([]byte, ramSize))
}

// NewBusWithRAM creates a bus over caller-provided RAM storage. The DBT
// engines pass a window of simulated host memory here so that translated
// code, helper functions and device DMA all observe one coherent RAM.
func NewBusWithRAM(ram []byte) *Bus {
	b := &Bus{
		RAM:  ram,
		devs: map[uint32]Device{},
	}
	b.Intc = NewIntc()
	b.AddDevice(IntcBase, b.Intc)
	b.AddDevice(UARTBase, NewUART())
	b.AddDevice(TimerBase, NewTimer(b.Intc.Line(IRQTimer)))
	b.AddDevice(BlockBase, NewBlockDev(b, b.Intc.Line(IRQBlock)))
	b.AddDevice(NetBase, NewNetDev(b, b.Intc.Line(IRQNet)))
	b.AddDevice(SysCtlBase, NewSysCtl(b))
	return b
}

// SysCtl returns the system controller.
func (b *Bus) SysCtl() *SysCtl { return b.devs[SysCtlBase].(*SysCtl) }

// SetConcurrent switches the bus between the single-threaded deterministic
// regime (no locks, plain RAM bytes) and the concurrent regime used by the
// parallel engine: device access and Tick serialize on an internal mutex and
// RAM accesses become atomic word operations. The RAM backing must be
// 4-byte aligned in concurrent mode (the engines allocate it 8-byte aligned).
func (b *Bus) SetConcurrent(on bool) { b.concurrent = on }

// PoweredOff reports whether the guest has requested shutdown.
func (b *Bus) PoweredOff() bool {
	if b.concurrent {
		b.mu.Lock()
		defer b.mu.Unlock()
	}
	return b.SysCtl().PowerOff
}

// AddDevice maps dev at the DevSize-aligned window starting at base.
func (b *Bus) AddDevice(base uint32, dev Device) {
	b.devs[base] = dev
	b.tickers = append(b.tickers, dev)
}

// Device returns the device mapped at base, or nil.
func (b *Bus) Device(base uint32) Device { return b.devs[base] }

// UART returns the console device.
func (b *Bus) UART() *UART { return b.devs[UARTBase].(*UART) }

// Timer returns the timer device.
func (b *Bus) Timer() *Timer { return b.devs[TimerBase].(*Timer) }

// Block returns the block device.
func (b *Bus) Block() *BlockDev { return b.devs[BlockBase].(*BlockDev) }

// Net returns the packet device.
func (b *Bus) Net() *NetDev { return b.devs[NetBase].(*NetDev) }

// Tick advances platform time by n retired guest instructions.
func (b *Bus) Tick(n uint64) {
	if b.concurrent {
		b.mu.Lock()
		defer b.mu.Unlock()
	}
	b.Now += n
	for _, d := range b.tickers {
		d.Tick(n)
	}
}

// IRQPending reports whether CPU 0's IRQ input is asserted (the
// uniprocessor view; SMP callers use IRQPendingFor).
func (b *Bus) IRQPending() bool { return b.IRQPendingFor(0) }

// IRQPendingFor reports whether the IRQ input of the given CPU is asserted.
func (b *Bus) IRQPendingFor(cpu int) bool {
	if b.concurrent {
		b.mu.Lock()
		defer b.mu.Unlock()
	}
	return b.Intc.AssertedFor(cpu)
}

func (b *Bus) inRAM(addr uint32, n uint32) bool {
	return uint64(addr)+uint64(n) <= uint64(len(b.RAM))
}

func (b *Bus) devAt(addr uint32) (Device, uint32) {
	base := addr &^ (DevSize - 1)
	d := b.devs[base]
	return d, addr - base
}

func (b *Bus) fault(addr uint32, write bool) {
	b.Fault = &BusError{Addr: addr, Write: write}
}

// ramWord returns the aligned RAM word containing addr viewed for atomic
// access (valid only in concurrent mode; see SetConcurrent for alignment).
// Byte order within the word matches the plain byte-wise path on
// little-endian hosts, which is all this simulator targets.
func (b *Bus) ramWord(addr uint32) *uint32 {
	return (*uint32)(unsafe.Pointer(&b.RAM[addr&^3]))
}

// casMergeRAM atomically replaces bits of the aligned RAM word containing
// addr: the sub-word store path in concurrent mode.
func (b *Bus) casMergeRAM(addr, mask, bits uint32) {
	p := b.ramWord(addr)
	for {
		old := atomic.LoadUint32(p)
		if atomic.CompareAndSwapUint32(p, old, old&^mask|bits) {
			return
		}
	}
}

// devRead32 is the locked (when concurrent) device read path.
func (b *Bus) devRead32(addr uint32) uint32 {
	if b.concurrent {
		b.mu.Lock()
		defer b.mu.Unlock()
	}
	if d, off := b.devAt(addr); d != nil {
		return d.Read32(off)
	}
	b.fault(addr, false)
	return 0
}

// devWrite32 is the locked (when concurrent) device write path.
func (b *Bus) devWrite32(addr uint32, v uint32) {
	if b.concurrent {
		b.mu.Lock()
		defer b.mu.Unlock()
	}
	if d, off := b.devAt(addr); d != nil {
		d.Write32(off, v)
		return
	}
	b.fault(addr, true)
}

// Read32 reads a 32-bit word from physical memory or a device register.
// Unmapped accesses record a bus fault and return 0.
func (b *Bus) Read32(addr uint32) uint32 {
	addr &^= 3
	if b.inRAM(addr, 4) {
		if b.concurrent {
			return atomic.LoadUint32(b.ramWord(addr))
		}
		r := b.RAM[addr:]
		return uint32(r[0]) | uint32(r[1])<<8 | uint32(r[2])<<16 | uint32(r[3])<<24
	}
	return b.devRead32(addr)
}

// Write32 writes a 32-bit word to physical memory or a device register.
func (b *Bus) Write32(addr uint32, v uint32) {
	addr &^= 3
	if b.inRAM(addr, 4) {
		if b.concurrent {
			atomic.StoreUint32(b.ramWord(addr), v)
			return
		}
		r := b.RAM[addr:]
		r[0], r[1], r[2], r[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
		return
	}
	b.devWrite32(addr, v)
}

// Read16 reads a halfword (device space reads extract from the word).
func (b *Bus) Read16(addr uint32) uint16 {
	addr &^= 1
	if b.inRAM(addr, 2) {
		if b.concurrent {
			return uint16(atomic.LoadUint32(b.ramWord(addr)) >> ((addr & 3) * 8))
		}
		return uint16(b.RAM[addr]) | uint16(b.RAM[addr+1])<<8
	}
	w := b.Read32(addr)
	return uint16(w >> ((addr & 2) * 8))
}

// Write16 writes a halfword.
func (b *Bus) Write16(addr uint32, v uint16) {
	addr &^= 1
	if b.inRAM(addr, 2) {
		if b.concurrent {
			sh := (addr & 3) * 8
			b.casMergeRAM(addr, 0xFFFF<<sh, uint32(v)<<sh)
			return
		}
		b.RAM[addr] = byte(v)
		b.RAM[addr+1] = byte(v >> 8)
		return
	}
	b.Write32(addr, uint32(v))
}

// Read8 reads a byte.
func (b *Bus) Read8(addr uint32) uint8 {
	if b.inRAM(addr, 1) {
		if b.concurrent {
			return uint8(atomic.LoadUint32(b.ramWord(addr)) >> ((addr & 3) * 8))
		}
		return b.RAM[addr]
	}
	w := b.Read32(addr)
	return uint8(w >> ((addr & 3) * 8))
}

// Write8 writes a byte.
func (b *Bus) Write8(addr uint32, v uint8) {
	if b.inRAM(addr, 1) {
		if b.concurrent {
			sh := (addr & 3) * 8
			b.casMergeRAM(addr, 0xFF<<sh, uint32(v)<<sh)
			return
		}
		b.RAM[addr] = v
		return
	}
	b.Write32(addr, uint32(v))
}

// LoadImage copies a flat binary image into RAM at base.
func (b *Bus) LoadImage(base uint32, image []byte) error {
	if !b.inRAM(base, uint32(len(image))) {
		return fmt.Errorf("bus: image of %d bytes at %#x exceeds RAM", len(image), base)
	}
	copy(b.RAM[base:], image)
	return nil
}
