package mmu

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"sldbt/internal/arm"
	"sldbt/internal/ghw"
)

func setup() (*ghw.Bus, *arm.CP15State, *Builder) {
	bus := ghw.NewBus(4 << 20)
	cp15 := &arm.CP15State{}
	b := NewBuilder(bus, 0x100000)
	cp15.TTBR0 = b.L1Base()
	cp15.SCTLR = 1 // MMU on
	return bus, cp15, b
}

func TestWalkDisabledMMUIsIdentity(t *testing.T) {
	bus := ghw.NewBus(1 << 20)
	cp15 := &arm.CP15State{}
	pa, _, fault := Walk(bus, cp15, 0x12345, Load, true)
	if fault != nil || pa != 0x12345 {
		t.Errorf("pa=%#x fault=%v", pa, fault)
	}
}

func TestSectionMapping(t *testing.T) {
	bus, cp15, b := setup()
	b.MapSection(0x00000000, 0x00000000, APKernel)
	b.MapSection(0x00100000, 0x00200000, APUserRW)

	pa, _, fault := Walk(bus, cp15, 0x00100123, Load, true)
	if fault != nil || pa != 0x00200123 {
		t.Errorf("section translation: pa=%#x fault=%v", pa, fault)
	}
	// Kernel section from user mode: permission fault.
	_, _, fault = Walk(bus, cp15, 0x00000040, Load, true)
	if fault == nil || fault.Type != FaultPermission {
		t.Errorf("want permission fault, got %v", fault)
	}
	// Same access privileged: fine.
	if _, _, fault = Walk(bus, cp15, 0x00000040, Store, false); fault != nil {
		t.Errorf("privileged access faulted: %v", fault)
	}
	// Unmapped region: translation fault.
	_, _, fault = Walk(bus, cp15, 0x00300000, Load, false)
	if fault == nil || fault.Type != FaultTranslation {
		t.Errorf("want translation fault, got %v", fault)
	}
	if fault.Error() == "" {
		t.Error("empty fault message")
	}
}

func TestPageMappingAndPermissions(t *testing.T) {
	bus, cp15, b := setup()
	b.MapPage(0x00400000, 0x00201000, APUserRO)
	b.MapPage(0x00401000, 0x00202000, APReadOnly)

	pa, _, fault := Walk(bus, cp15, 0x00400ABC, Load, true)
	if fault != nil || pa != 0x00201ABC {
		t.Errorf("page translation: pa=%#x fault=%v", pa, fault)
	}
	// User store to user-RO page faults; kernel store succeeds.
	if _, _, f := Walk(bus, cp15, 0x00400000, Store, true); f == nil || f.Type != FaultPermission {
		t.Errorf("user store to RO: %v", f)
	}
	if _, _, f := Walk(bus, cp15, 0x00400000, Store, false); f != nil {
		t.Errorf("kernel store to user-RO: %v", f)
	}
	// Fully read-only page rejects even kernel stores.
	if _, _, f := Walk(bus, cp15, 0x00401000, Store, false); f == nil {
		t.Error("kernel store to read-only page succeeded")
	}
	// Unmapped page within a mapped table: translation fault.
	if _, _, f := Walk(bus, cp15, 0x00402000, Load, false); f == nil || f.Type != FaultTranslation {
		t.Errorf("hole in table: %v", f)
	}
}

func TestUnmap(t *testing.T) {
	bus, cp15, b := setup()
	b.MapPage(0x00400000, 0x00201000, APUserRW)
	if _, _, f := Walk(bus, cp15, 0x00400000, Load, true); f != nil {
		t.Fatalf("mapped page faulted: %v", f)
	}
	b.Unmap(0x00400000)
	if _, _, f := Walk(bus, cp15, 0x00400000, Load, true); f == nil {
		t.Error("unmapped page still translates")
	}
}

func TestTLBCachingAndFlush(t *testing.T) {
	bus, cp15, b := setup()
	b.MapPage(0x00400000, 0x00201000, APUserRW)
	var tlb TLB
	if _, f := tlb.Translate(bus, cp15, 0x00400010, Load, true); f != nil {
		t.Fatal(f)
	}
	if tlb.Misses != 1 || tlb.Hits != 0 {
		t.Fatalf("first access: hits=%d misses=%d", tlb.Hits, tlb.Misses)
	}
	if _, f := tlb.Translate(bus, cp15, 0x00400020, Load, true); f != nil {
		t.Fatal(f)
	}
	if tlb.Hits != 1 {
		t.Fatalf("second access: hits=%d", tlb.Hits)
	}
	// Remap the page and flush via TLBIALL generation counter: the TLB must
	// observe the new mapping only after the flush.
	b.MapPage(0x00400000, 0x00202000, APUserRW)
	pa, _ := tlb.Translate(bus, cp15, 0x00400000, Load, true)
	if pa != 0x00201000 {
		t.Fatalf("stale entry expected before flush, got %#x", pa)
	}
	cp15.TLBFlushes++
	pa, _ = tlb.Translate(bus, cp15, 0x00400000, Load, true)
	if pa != 0x00202000 {
		t.Fatalf("after flush: pa=%#x", pa)
	}
	// Cached permissions still enforced on hits.
	if _, f := tlb.Translate(bus, cp15, 0x00400000, Store, true); f != nil {
		t.Fatalf("store to RW: %v", f)
	}
}

// TestTLBIsPureCache: translating with a TLB always agrees with a raw walk,
// for random mappings and accesses.
func TestTLBIsPureCache(t *testing.T) {
	bus, cp15, b := setup()
	aps := []AP{APKernel, APUserRO, APUserRW, APReadOnly}
	rnd := rand.New(rand.NewSource(5))
	for i := 0; i < 64; i++ {
		va := uint32(0x00400000) + uint32(rnd.Intn(256))<<12
		pa := uint32(0x00200000) + uint32(rnd.Intn(512))<<12
		b.MapPage(va, pa, aps[rnd.Intn(len(aps))])
	}
	var tlb TLB
	cfg := &quick.Config{
		MaxCount: 3000,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			va := uint32(0x00400000) + uint32(r.Intn(300))<<12 + uint32(r.Intn(1<<12))
			vals[0] = reflect.ValueOf(va)
			vals[1] = reflect.ValueOf(Access(r.Intn(3)))
			vals[2] = reflect.ValueOf(r.Intn(2) == 0)
		},
	}
	f := func(va uint32, acc Access, user bool) bool {
		paT, fT := tlb.Translate(bus, cp15, va, acc, user)
		paW, _, fW := Walk(bus, cp15, va, acc, user)
		if (fT == nil) != (fW == nil) {
			return false
		}
		if fT != nil {
			return fT.Type == fW.Type
		}
		return paT == paW
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestAccessStrings(t *testing.T) {
	if Fetch.String() != "fetch" || Load.String() != "load" || Store.String() != "store" {
		t.Error("access strings wrong")
	}
	if FaultTranslation.String() != "translation" || FaultPermission.String() != "permission" {
		t.Error("fault strings wrong")
	}
}
